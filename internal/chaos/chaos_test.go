package chaos

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"livenet/internal/netem"
	"livenet/internal/sim"
)

// recorder is an Injector that logs calls (no system under test).
type recorder struct{ calls []string }

func (r *recorder) CrashNode(id int)   { r.calls = append(r.calls, fmt.Sprintf("crash %d", id)) }
func (r *recorder) RestartNode(id int) { r.calls = append(r.calls, fmt.Sprintf("restart %d", id)) }
func (r *recorder) SetOverlayLink(a, b int, up bool) {
	r.calls = append(r.calls, fmt.Sprintf("link %d-%d up=%v", a, b, up))
}
func (r *recorder) SetOverlayBurst(a, b int, cfg *netem.BurstConfig) {
	r.calls = append(r.calls, fmt.Sprintf("burst %d-%d set=%v", a, b, cfg != nil))
}
func (r *recorder) DegradeLastMile(id int, loss float64) int {
	r.calls = append(r.calls, fmt.Sprintf("degrade %d %.3f", id, loss))
	return 1
}
func (r *recorder) RestoreLastMile(id int) {
	r.calls = append(r.calls, fmt.Sprintf("restore %d", id))
}
func (r *recorder) KillReplica(i int) { r.calls = append(r.calls, fmt.Sprintf("kill-replica %d", i)) }
func (r *recorder) RestartReplica(i int) {
	r.calls = append(r.calls, fmt.Sprintf("restart-replica %d", i))
}
func (r *recorder) PartitionReplica(i int) {
	r.calls = append(r.calls, fmt.Sprintf("partition-replica %d", i))
}
func (r *recorder) HealReplica(i int) {
	r.calls = append(r.calls, fmt.Sprintf("heal-replica %d", i))
}
func (r *recorder) DrainNode(id int) int {
	r.calls = append(r.calls, fmt.Sprintf("drain %d", id))
	return 1
}
func (r *recorder) UndrainNode(id int) {
	r.calls = append(r.calls, fmt.Sprintf("undrain %d", id))
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GenerateConfig{Nodes: 12, Horizon: time.Minute, Crashes: 2, LinkCuts: 3, Bursts: 2, Replicas: 3, ReplicaKills: 1}
	a := Generate(99, cfg)
	b := Generate(99, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scenarios:\n%v\n%v", a, b)
	}
	c := Generate(100, cfg)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	if len(a.Faults) != 2+3+2+1 {
		t.Fatalf("fault count = %d", len(a.Faults))
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatal("faults not sorted by At")
		}
	}
}

// run executes a scenario against a recorder and returns the rendered
// timeline plus the raw injector call log.
func run(sc Scenario, until time.Duration) (string, []string) {
	loop := sim.NewLoop(1)
	rec := &recorder{}
	eng := NewEngine(loop, rec)
	eng.Install(sc)
	loop.RunUntil(until)
	return eng.TimelineString(), rec.calls
}

func TestEngineReplaysByteIdentically(t *testing.T) {
	sc := Generate(7, GenerateConfig{Nodes: 8, Horizon: 30 * time.Second, Crashes: 1, LinkCuts: 2, Bursts: 1})
	tl1, calls1 := run(sc, time.Minute)
	tl2, calls2 := run(sc, time.Minute)
	if tl1 != tl2 {
		t.Fatalf("timelines differ:\n%s\n---\n%s", tl1, tl2)
	}
	if !reflect.DeepEqual(calls1, calls2) {
		t.Fatalf("injector call sequences differ:\n%v\n%v", calls1, calls2)
	}
	if len(tl1) == 0 || len(calls1) == 0 {
		t.Fatal("scenario applied nothing")
	}
}

func TestFlapAlternatesAndEndsUp(t *testing.T) {
	sc := Scenario{Faults: []Fault{{
		Kind: LinkFlap, At: time.Second, Until: 5 * time.Second, Period: time.Second, A: 1, B: 2,
	}}}
	_, calls := run(sc, 10*time.Second)
	want := []string{
		"link 1-2 up=false", "link 1-2 up=true",
		"link 1-2 up=false", "link 1-2 up=true",
		"link 1-2 up=true", // flap-end safety
	}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("flap calls = %v, want %v", calls, want)
	}
}

func TestPartitionCutsAndHeals(t *testing.T) {
	sc := Scenario{Faults: []Fault{{
		Kind: Partition, At: time.Second, Until: 2 * time.Second,
		Group: []int{0, 1}, Peers: []int{2},
	}}}
	_, calls := run(sc, 3*time.Second)
	want := []string{
		"link 0-2 up=false", "link 1-2 up=false",
		"link 0-2 up=true", "link 1-2 up=true",
	}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("partition calls = %v, want %v", calls, want)
	}
}

func TestNodeCrashWithAutoRestart(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Kind: NodeCrash, At: time.Second, Until: 3 * time.Second, Node: 4},
		{Kind: ReplicaKill, At: 2 * time.Second, Replica: 1},
	}}
	tl, calls := run(sc, 5*time.Second)
	want := []string{"crash 4", "kill-replica 1", "restart 4"}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	if tl == "" {
		t.Fatal("empty timeline")
	}
}

func TestNodeDrainWithAutoUndrain(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Kind: NodeDrain, At: time.Second, Until: 3 * time.Second, Node: 5},
		{Kind: NodeUndrain, At: 4 * time.Second, Node: 6},
	}}
	_, calls := run(sc, 5*time.Second)
	want := []string{"drain 5", "undrain 5", "undrain 6"}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
}

// TestMigrationStormReplaysByteIdentically pins the migration-storm
// schedule (many NodeDrain faults) to the same byte-identical replay
// contract as every other fault kind.
func TestMigrationStormReplaysByteIdentically(t *testing.T) {
	cfg := GenerateConfig{Nodes: 20, Horizon: time.Minute, Drains: 8}
	sc := Generate(11, cfg)
	if !reflect.DeepEqual(sc, Generate(11, cfg)) {
		t.Fatal("same seed produced different migration storms")
	}
	drains := 0
	for _, f := range sc.Faults {
		if f.Kind == NodeDrain {
			drains++
			if f.Until <= f.At {
				t.Fatalf("drain without undrain window: %+v", f)
			}
		}
	}
	if drains != 8 {
		t.Fatalf("drains = %d, want 8", drains)
	}
	tl1, calls1 := run(sc, 2*time.Minute)
	tl2, calls2 := run(sc, 2*time.Minute)
	if tl1 != tl2 || !reflect.DeepEqual(calls1, calls2) {
		t.Fatalf("migration storm did not replay identically:\n%s\n---\n%s", tl1, tl2)
	}
}

// TestDrainsKnobIsAdditive pins that schedules generated with Drains=0
// are unchanged from before the knob existed: drains draw from the RNG
// only after every other fault kind.
func TestDrainsKnobIsAdditive(t *testing.T) {
	base := GenerateConfig{Nodes: 12, Horizon: time.Minute, Crashes: 2, LinkCuts: 3, Bursts: 2, Replicas: 3, ReplicaKills: 1}
	withDrains := base
	withDrains.Drains = 4
	a, b := Generate(33, base), Generate(33, withDrains)
	if len(b.Faults) != len(a.Faults)+4 {
		t.Fatalf("fault counts: base %d, with drains %d", len(a.Faults), len(b.Faults))
	}
	// Removing the drains from the augmented schedule must leave exactly
	// the base schedule (the sort is stable, drains only add).
	stripped := b.Faults[:0:0]
	for _, f := range b.Faults {
		if f.Kind != NodeDrain {
			stripped = append(stripped, f)
		}
	}
	if !reflect.DeepEqual(stripped, a.Faults) {
		t.Fatalf("Drains>0 perturbed the base schedule:\n%v\n%v", stripped, a.Faults)
	}
}
