package graph

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"livenet/internal/sim"
)

func TestSigmoidRange(t *testing.T) {
	if err := quick.Check(func(u16 uint16) bool {
		u := float64(u16%1001) / 1000
		f := Sigmoid(u)
		// Mathematically f ∈ (1,2); in float64 the low end rounds to 1.
		return f >= 1 && f < 2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidShape(t *testing.T) {
	// Idle link ≈ 1, saturated ≈ 2, inflection at 80%.
	if f := Sigmoid(0); f > 1.001 {
		t.Fatalf("Sigmoid(0) = %v, want ~1", f)
	}
	if f := Sigmoid(1); f < 1.99 {
		t.Fatalf("Sigmoid(1) = %v, want ~2", f)
	}
	if f := Sigmoid(0.80); math.Abs(f-1.5) > 1e-9 {
		t.Fatalf("Sigmoid(0.8) = %v, want 1.5 at inflection", f)
	}
	if Sigmoid(0.9) <= Sigmoid(0.7) {
		t.Fatal("sigmoid should be increasing")
	}
}

func TestWeightEq2(t *testing.T) {
	g := New(2)
	g.SetLink(0, 1, 100*time.Millisecond, 0, 0)
	// No loss, idle: weight = RTT * ~1.
	w := g.Weight(0, 1)
	if w < 100 || w > 101 {
		t.Fatalf("idle lossless weight = %v, want ~100 ms", w)
	}
	// 100% loss doubles the expected RTT.
	g.SetLink(0, 1, 100*time.Millisecond, 1, 0)
	w = g.Weight(0, 1)
	if w < 200 || w > 202 {
		t.Fatalf("full-loss weight = %v, want ~200 ms", w)
	}
	// 10% loss: 0.1*200 + 0.9*100 = 110 ms.
	g.SetLink(0, 1, 100*time.Millisecond, 0.1, 0)
	w = g.Weight(0, 1)
	if w < 110 || w > 111.2 {
		t.Fatalf("10%%-loss weight = %v, want ~110 ms", w)
	}
}

func TestWeightUsesMaxUtil(t *testing.T) {
	g := New(2)
	g.SetLink(0, 1, 100*time.Millisecond, 0, 0.2)
	idle := g.Weight(0, 1)
	g.SetNodeUtil(1, 0.95) // endpoint hot even though link is cool
	hot := g.Weight(0, 1)
	if hot <= idle*1.5 {
		t.Fatalf("hot endpoint should dominate: idle=%v hot=%v", idle, hot)
	}
}

func TestWeightMissingLink(t *testing.T) {
	g := New(2)
	if !math.IsInf(g.Weight(0, 1), 1) {
		t.Fatal("missing link should weigh +Inf")
	}
}

func TestSetLinkUpdatesInPlace(t *testing.T) {
	g := New(2)
	g.SetLink(0, 1, 10*time.Millisecond, 0, 0)
	g.SetLink(0, 1, 20*time.Millisecond, 0.5, 0.5)
	if len(g.Neighbors(0)) != 1 {
		t.Fatalf("duplicate adjacency entries: %v", g.Neighbors(0))
	}
	if l := g.Link(0, 1); l.RTT != 20*time.Millisecond || l.Loss != 0.5 {
		t.Fatalf("update lost: %+v", l)
	}
}

func TestOverloadChecks(t *testing.T) {
	g := New(3)
	g.SetLink(0, 1, time.Millisecond, 0, 0.5)
	g.SetLink(1, 2, time.Millisecond, 0, 0.85)
	if g.LinkOverloaded(0, 1) {
		t.Fatal("0->1 at 50% should not be overloaded")
	}
	if !g.LinkOverloaded(1, 2) {
		t.Fatal("1->2 at 85% should be overloaded")
	}
	g.SetNodeUtil(0, 0.9)
	if !g.LinkOverloaded(0, 1) {
		t.Fatal("link with hot endpoint should count as overloaded")
	}
	if !g.PathOverloaded([]int{0, 1, 2}) {
		t.Fatal("path through hot node should be overloaded")
	}
	if g.PathOverloaded([]int{1, 2}) == false {
		// 1->2 util 0.85 >= 0.80
		t.Fatal("path with hot link should be overloaded")
	}
	if !g.LinkOverloaded(2, 0) {
		t.Fatal("missing link should be treated as overloaded")
	}
}

func TestPathRTT(t *testing.T) {
	g := New(3)
	g.SetLink(0, 1, 10*time.Millisecond, 0, 0)
	g.SetLink(1, 2, 15*time.Millisecond, 0, 0)
	if got := g.PathRTT([]int{0, 1, 2}); got != 25*time.Millisecond {
		t.Fatalf("PathRTT = %v", got)
	}
	if got := g.PathRTT([]int{0}); got != 0 {
		t.Fatalf("single-node path RTT = %v", got)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.SetLink(0, 1, 10*time.Millisecond, 0.1, 0.2)
	g.SetNodeUtil(2, 0.7)
	c := g.Clone()
	g.SetLink(0, 1, 99*time.Millisecond, 0.9, 0.9)
	g.SetNodeUtil(2, 0.99)
	if c.Link(0, 1).RTT != 10*time.Millisecond {
		t.Fatal("clone shares link storage with original")
	}
	if c.NodeUtil(2) != 0.7 {
		t.Fatal("clone shares node utils with original")
	}
}

func TestNeighborWeightsMatchesWeight(t *testing.T) {
	g := New(8)
	rng := sim.NewSource(11).Stream("gw")
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && rng.Bernoulli(0.7) {
				g.SetLink(i, j, time.Duration(5+rng.Intn(80))*time.Millisecond,
					rng.Float64()*0.01, rng.Float64())
			}
		}
		g.SetNodeUtil(i, rng.Float64())
	}
	for i := 0; i < 8; i++ {
		nbrs, ws := g.NeighborWeights(i)
		if len(nbrs) != len(g.Neighbors(i)) {
			t.Fatalf("node %d: %d cached neighbors, want %d", i, len(nbrs), len(g.Neighbors(i)))
		}
		for idx, nb := range nbrs {
			if want := g.Weight(i, nb); ws[idx] != want {
				t.Fatalf("cached weight %d->%d = %v, want %v", i, nb, ws[idx], want)
			}
		}
	}
}

func TestNeighborWeightsInvalidation(t *testing.T) {
	g := New(3)
	g.SetLink(0, 1, 10*time.Millisecond, 0, 0)
	_, ws := g.NeighborWeights(0)
	before := ws[0]

	// Link update must invalidate the cached row.
	g.SetLink(0, 1, 40*time.Millisecond, 0, 0)
	_, ws = g.NeighborWeights(0)
	if ws[0] == before || ws[0] != g.Weight(0, 1) {
		t.Fatalf("row not rebuilt after SetLink: %v (want %v)", ws[0], g.Weight(0, 1))
	}

	// Node-utilization change affects other nodes' rows too (u is the max
	// of link and endpoint utilizations).
	before = ws[0]
	g.SetNodeUtil(1, 0.95)
	_, ws = g.NeighborWeights(0)
	if ws[0] <= before {
		t.Fatalf("endpoint util=0.95 should raise 0->1 weight: %v vs %v", ws[0], before)
	}
	if ws[0] != g.Weight(0, 1) {
		t.Fatalf("cache disagrees with Weight after SetNodeUtil")
	}
}
