// Package graph models the CDN overlay as a directed weighted graph and
// implements the paper's link-weight abstraction (§4.3, Eq. 2–3):
//
//	W_AB = (ρ·2·RTT_AB + (1−ρ)·RTT_AB) · f(u_AB)
//	f(u)  = 1/(1+e^{α·(β−u)}) + 1
//
// where ρ is the link packet-loss rate and u_AB is the maximum of the link
// utilization and the two endpoint node utilizations. α=0.5 and β=80 (the
// sigmoid operates on percentage points — with utilization expressed as a
// fraction the exponent would be nearly constant over [0,1] and the term
// would never penalize hot links).
package graph

import (
	"math"
	"time"
)

// Default hyper-parameters from the paper's implementation.
const (
	Alpha = 0.5
	Beta  = 80.0 // percent
	// OverloadTarget is the pre-defined utilization target (fraction)
	// beyond which links/nodes are considered overloaded (§4.2).
	OverloadTarget = 0.80
)

// Link holds the Global Discovery metrics for one directed overlay link.
type Link struct {
	From, To int
	RTT      time.Duration
	Loss     float64 // packet loss rate in [0,1]
	Util     float64 // link utilization in [0,1]
	// Down marks a failed link: its weight is +Inf (so KSP never routes
	// through it) and the validity filter treats it like an overloaded
	// link. A fresh SetLink measurement clears it.
	Down bool
}

// Graph is a directed overlay graph over nodes 0..N-1.
// It is not safe for concurrent mutation.
type Graph struct {
	N        int
	adj      [][]int // adjacency lists (out-neighbors)
	links    map[int64]*Link
	nodeUtil []float64 // combined node load metric in [0,1] (§4.2 footnote)
	nodeDown []bool    // failed nodes: every incident link weighs +Inf

	// Per-neighbor weight cache: wNbrs[id][i] is Weight(id, adj[id][i]),
	// rebuilt lazily per version (the Brain mutates the view only between
	// routing epochs, so rows survive a whole epoch of Dijkstra probes
	// that would otherwise each pay a map lookup).
	version uint64
	wNbrs   [][]float64
	wStamp  []uint64
	lNbrs   [][]*Link // link pointers parallel to adj, for row rebuilds
}

func key(from, to int) int64 { return int64(from)<<32 | int64(uint32(to)) }

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	return &Graph{
		N:        n,
		adj:      make([][]int, n),
		links:    make(map[int64]*Link),
		nodeUtil: make([]float64, n),
		nodeDown: make([]bool, n),
		version:  1,
		wNbrs:    make([][]float64, n),
		wStamp:   make([]uint64, n),
		lNbrs:    make([][]*Link, n),
	}
}

// SetLink creates or updates the directed link from→to. A fresh
// measurement proves the link carries traffic, so it also clears Down.
func (g *Graph) SetLink(from, to int, rtt time.Duration, loss, util float64) {
	g.version++
	k := key(from, to)
	if l, ok := g.links[k]; ok {
		l.RTT, l.Loss, l.Util = rtt, loss, util
		l.Down = false
		return
	}
	l := &Link{From: from, To: to, RTT: rtt, Loss: loss, Util: util}
	g.links[k] = l
	g.adj[from] = append(g.adj[from], to)
	g.lNbrs[from] = append(g.lNbrs[from], l)
}

// Link returns the directed link from→to, or nil.
func (g *Graph) Link(from, to int) *Link { return g.links[key(from, to)] }

// Neighbors returns the out-neighbors of node id.
func (g *Graph) Neighbors(id int) []int { return g.adj[id] }

// SetNodeUtil records the combined load metric for a node.
func (g *Graph) SetNodeUtil(id int, u float64) {
	if g.nodeUtil[id] != u {
		g.version++
	}
	g.nodeUtil[id] = u
}

// NodeUtil returns the combined load metric for a node.
func (g *Graph) NodeUtil(id int) float64 { return g.nodeUtil[id] }

// SetLinkDown marks/clears failure state on the directed link from→to.
func (g *Graph) SetLinkDown(from, to int, down bool) {
	l := g.links[key(from, to)]
	if l == nil || l.Down == down {
		return
	}
	g.version++
	l.Down = down
}

// SetNodeDown marks/clears failure state on a node; while down, every
// link incident to it weighs +Inf and the validity filter rejects it.
func (g *Graph) SetNodeDown(id int, down bool) {
	if g.nodeDown[id] == down {
		return
	}
	g.version++
	g.nodeDown[id] = down
}

// NodeDown reports a node's failure state.
func (g *Graph) NodeDown(id int) bool { return g.nodeDown[id] }

// Sigmoid is f(u) from Eq. 3, with u in [0,1] (converted internally to
// percentage points). It ranges over (1,2): ≈1 for idle links and ≈2 for
// saturated ones, with the inflection at β=80%.
func Sigmoid(u float64) float64 {
	return 1/(1+math.Exp(Alpha*(Beta-u*100))) + 1
}

// Weight returns W_AB in milliseconds per Eq. 2, or +Inf if the link does
// not exist. The first factor is the expected RTT assuming a lost packet
// is recovered on the second attempt.
func (g *Graph) Weight(from, to int) float64 {
	l := g.links[key(from, to)]
	if l == nil {
		return math.Inf(1)
	}
	return g.linkWeight(l)
}

func (g *Graph) linkWeight(l *Link) float64 {
	if l.Down || g.nodeDown[l.From] || g.nodeDown[l.To] {
		return math.Inf(1)
	}
	rttMs := float64(l.RTT) / float64(time.Millisecond)
	expected := l.Loss*2*rttMs + (1-l.Loss)*rttMs
	u := math.Max(l.Util, math.Max(g.nodeUtil[l.From], g.nodeUtil[l.To]))
	return expected * Sigmoid(u)
}

// NeighborWeights returns id's out-neighbors and their Eq. 2 weights from
// the per-node cache, rebuilding the row if the graph changed since it
// was last computed. The returned slices are owned by the graph and valid
// until the next mutation; callers must not retain or modify them.
func (g *Graph) NeighborWeights(id int) ([]int, []float64) {
	if g.wStamp[id] != g.version {
		row := g.wNbrs[id]
		lnks := g.lNbrs[id]
		if cap(row) < len(lnks) {
			row = make([]float64, len(lnks))
		}
		row = row[:len(lnks)]
		for i, l := range lnks {
			row[i] = g.linkWeight(l)
		}
		g.wNbrs[id] = row
		g.wStamp[id] = g.version
	}
	return g.adj[id], g.wNbrs[id]
}

// LinkOverloaded reports whether the from→to link or either endpoint is at
// or beyond the overload target.
func (g *Graph) LinkOverloaded(from, to int) bool {
	l := g.links[key(from, to)]
	if l == nil || l.Down {
		return true
	}
	return l.Util >= OverloadTarget ||
		g.nodeUtil[from] >= OverloadTarget ||
		g.nodeUtil[to] >= OverloadTarget
}

// NodeOverloaded reports whether the node is at or beyond the target.
// A down node is unusable a fortiori.
func (g *Graph) NodeOverloaded(id int) bool {
	return g.nodeDown[id] || g.nodeUtil[id] >= OverloadTarget
}

// PathOverloaded reports whether any link or node along the path is
// overloaded. The path is a node sequence including both endpoints.
func (g *Graph) PathOverloaded(path []int) bool {
	for i, n := range path {
		if g.NodeOverloaded(n) {
			return true
		}
		if i+1 < len(path) && g.LinkOverloaded(n, path[i+1]) {
			return true
		}
	}
	return false
}

// PathRTT sums the link RTTs along a path (Inf if a link is missing).
func (g *Graph) PathRTT(path []int) time.Duration {
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		l := g.Link(path[i], path[i+1])
		if l == nil {
			return time.Duration(math.MaxInt64)
		}
		total += l.RTT
	}
	return total
}

// Clone returns a deep copy; the Brain snapshots the global view before
// each routing round so discovery updates don't race the computation.
func (g *Graph) Clone() *Graph {
	c := New(g.N)
	copy(c.nodeUtil, g.nodeUtil)
	copy(c.nodeDown, g.nodeDown)
	for _, l := range g.links {
		c.SetLink(l.From, l.To, l.RTT, l.Loss, l.Util)
		if l.Down {
			c.SetLinkDown(l.From, l.To, true)
		}
	}
	return c
}
