// Package graph models the CDN overlay as a directed weighted graph and
// implements the paper's link-weight abstraction (§4.3, Eq. 2–3):
//
//	W_AB = (ρ·2·RTT_AB + (1−ρ)·RTT_AB) · f(u_AB)
//	f(u)  = 1/(1+e^{α·(β−u)}) + 1
//
// where ρ is the link packet-loss rate and u_AB is the maximum of the link
// utilization and the two endpoint node utilizations. α=0.5 and β=80 (the
// sigmoid operates on percentage points — with utilization expressed as a
// fraction the exponent would be nearly constant over [0,1] and the term
// would never penalize hot links).
//
// Storage is a flat CSR (compressed sparse row) layout: one rowStart
// offset array plus parallel cols/links/weight arrays, so a 600-node mesh
// is a handful of contiguous allocations instead of a pointer-chasing
// map. New edges land in a pending list and are compacted into the CSR
// arrays lazily on the first row read; per-edge updates hit the edge
// index map and mutate in place. A reverse CSR (in-edges) is maintained
// for the Brain's bound checks, which run Dijkstra toward a node.
package graph

import (
	"math"
	"sort"
	"time"
)

// Default hyper-parameters from the paper's implementation.
const (
	Alpha = 0.5
	Beta  = 80.0 // percent
	// OverloadTarget is the pre-defined utilization target (fraction)
	// beyond which links/nodes are considered overloaded (§4.2).
	OverloadTarget = 0.80
)

// Link holds the Global Discovery metrics for one directed overlay link.
type Link struct {
	From, To int
	RTT      time.Duration
	Loss     float64 // packet loss rate in [0,1]
	Util     float64 // link utilization in [0,1]
	// Down marks a failed link: its weight is +Inf (so KSP never routes
	// through it) and the validity filter treats it like an overloaded
	// link. A fresh SetLink measurement clears it.
	Down bool
}

// Graph is a directed overlay graph over nodes 0..N-1.
// It is not safe for concurrent mutation; concurrent reads are safe once
// the CSR arrays and weight rows are materialized (see
// MaterializeWeights), which is how the Brain's parallel recompute reads
// one view from many workers.
type Graph struct {
	N int

	// CSR topology: edge slot e of node i lives at
	// rowStart[i] <= e < rowStart[i+1]; cols[e] is the out-neighbor and
	// links[e] the edge payload.
	rowStart []int32
	cols     []int
	links    []Link

	// eIdx maps (from,to) to an edge slot. Slots >= len(links) index the
	// pending list (inserted since the last compaction).
	eIdx    map[int64]int32
	pending []Link

	// Reverse CSR (in-edges), rebuilt at compaction: rCols[e] is an
	// in-neighbor of the row node and rSlot[e] the forward edge slot.
	rRowStart []int32
	rCols     []int
	rSlot     []int32

	nodeUtil []float64 // combined node load metric in [0,1] (§4.2 footnote)
	nodeDown []bool    // failed nodes: every incident link weighs +Inf

	// Per-edge weight cache: wRow[e] is the Eq. 2 weight of edge slot e,
	// valid for node i when wStamp[i] == version (the Brain mutates the
	// view only between routing rounds, so rows survive a whole round of
	// Dijkstra probes). rwStamp tracks per-node reverse rows in rW.
	version uint64
	wRow    []float64
	wStamp  []uint64
	rW      []float64
	rwStamp []uint64

	// matVer is the version both weight-row caches were last fully
	// materialized at: MaterializeWeights is an O(1) no-op until the next
	// effective mutation, so a batch caller (the Brain runs it before
	// every epoch fan-out and every shard of the federation repeats it)
	// pays the O(E) sweep once per version instead of once per call.
	matVer uint64
}

func key(from, to int) int64 { return int64(from)<<32 | int64(uint32(to)) }

// New returns an empty graph over n nodes.
func New(n int) *Graph {
	return &Graph{
		N:        n,
		rowStart: make([]int32, n+1),
		// The reverse CSR starts as valid empty rows (rebuilt at every
		// compaction): reverse sweeps are legal even before the first
		// link report lands.
		rRowStart: make([]int32, n+1),
		eIdx:      make(map[int64]int32),
		nodeUtil:  make([]float64, n),
		nodeDown:  make([]bool, n),
		version:   1,
		wStamp:    make([]uint64, n),
		rwStamp:   make([]uint64, n),
	}
}

// Version is a counter bumped on every effective mutation (a report that
// changes nothing does not advance it). The Brain stamps its caches —
// weight rows, SSSP trees, filtered path decisions — with it.
func (g *Graph) Version() uint64 { return g.version }

// BumpVersion advances the version without changing any metric. Callers
// that filter decisions on state held OUTSIDE the graph (e.g. the
// Brain's draining set) bump it so memoized decisions expire.
func (g *Graph) BumpVersion() { g.version++ }

// Edges returns the number of directed links (including pending inserts).
func (g *Graph) Edges() int { return len(g.links) + len(g.pending) }

// SetLink creates or updates the directed link from→to. A fresh
// measurement proves the link carries traffic, so it also clears Down.
// It reports whether the call changed anything (metrics or existence).
func (g *Graph) SetLink(from, to int, rtt time.Duration, loss, util float64) bool {
	k := key(from, to)
	if slot, ok := g.eIdx[k]; ok {
		l := g.linkAt(slot)
		if l.RTT == rtt && l.Loss == loss && l.Util == util && !l.Down {
			return false
		}
		g.version++
		l.RTT, l.Loss, l.Util = rtt, loss, util
		l.Down = false
		return true
	}
	g.version++
	g.eIdx[k] = int32(len(g.links) + len(g.pending))
	g.pending = append(g.pending, Link{From: from, To: to, RTT: rtt, Loss: loss, Util: util})
	return true
}

// linkAt resolves an edge slot to its payload (compacted or pending).
func (g *Graph) linkAt(slot int32) *Link {
	if int(slot) < len(g.links) {
		return &g.links[slot]
	}
	return &g.pending[int(slot)-len(g.links)]
}

// compact folds pending edge inserts into the CSR arrays (counting sort
// by source node; insertion order within a node is preserved, so the
// adjacency order — and therefore every downstream tie-break — is
// identical to the incremental-append layout it replaces).
func (g *Graph) compact() {
	if len(g.pending) == 0 {
		return
	}
	n := g.N
	oldRow, oldLinks := g.rowStart, g.links
	deg := make([]int32, n+1)
	for i := 0; i < n; i++ {
		deg[i] = oldRow[i+1] - oldRow[i]
	}
	for i := range g.pending {
		deg[g.pending[i].From]++
	}
	e := len(oldLinks) + len(g.pending)
	rowStart := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rowStart[i+1] = rowStart[i] + deg[i]
	}
	cols := make([]int, e)
	links := make([]Link, e)
	next := make([]int32, n)
	copy(next, rowStart[:n])
	emit := func(l Link) {
		at := next[l.From]
		next[l.From]++
		cols[at] = l.To
		links[at] = l
		g.eIdx[key(l.From, l.To)] = at
	}
	for i := 0; i < n; i++ {
		for s := oldRow[i]; s < oldRow[i+1]; s++ {
			emit(oldLinks[s])
		}
	}
	for i := range g.pending {
		emit(g.pending[i])
	}
	g.rowStart, g.cols, g.links = rowStart, cols, links
	g.pending = g.pending[:0]
	g.wRow = make([]float64, e)
	g.rW = make([]float64, e)
	for i := range g.wStamp {
		g.wStamp[i] = 0
		g.rwStamp[i] = 0
	}
	g.buildReverse()
}

// buildReverse rebuilds the reverse CSR from the forward arrays.
func (g *Graph) buildReverse() {
	n, e := g.N, len(g.links)
	deg := make([]int32, n)
	for _, to := range g.cols {
		deg[to]++
	}
	rRow := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rRow[i+1] = rRow[i] + deg[i]
	}
	rCols := make([]int, e)
	rSlot := make([]int32, e)
	next := make([]int32, n)
	copy(next, rRow[:n])
	for i := 0; i < n; i++ {
		for s := g.rowStart[i]; s < g.rowStart[i+1]; s++ {
			to := g.cols[s]
			at := next[to]
			next[to]++
			rCols[at] = i
			rSlot[at] = s
		}
	}
	g.rRowStart, g.rCols, g.rSlot = rRow, rCols, rSlot
}

// Link returns the directed link from→to, or nil. The pointer stays
// valid until the next topology insertion (a SetLink on a new pair).
func (g *Graph) Link(from, to int) *Link {
	slot, ok := g.eIdx[key(from, to)]
	if !ok {
		return nil
	}
	return g.linkAt(slot)
}

// Neighbors returns the out-neighbors of node id.
func (g *Graph) Neighbors(id int) []int {
	g.compact()
	return g.cols[g.rowStart[id]:g.rowStart[id+1]]
}

// SetNodeUtil records the combined load metric for a node; it reports
// whether the value changed.
func (g *Graph) SetNodeUtil(id int, u float64) bool {
	if g.nodeUtil[id] == u {
		return false
	}
	g.version++
	g.nodeUtil[id] = u
	return true
}

// NodeUtil returns the combined load metric for a node.
func (g *Graph) NodeUtil(id int) float64 { return g.nodeUtil[id] }

// SetLinkDown marks/clears failure state on the directed link from→to;
// it reports whether the state changed.
func (g *Graph) SetLinkDown(from, to int, down bool) bool {
	l := g.Link(from, to)
	if l == nil || l.Down == down {
		return false
	}
	g.version++
	l.Down = down
	return true
}

// SetNodeDown marks/clears failure state on a node; while down, every
// link incident to it weighs +Inf and the validity filter rejects it.
// It reports whether the state changed.
func (g *Graph) SetNodeDown(id int, down bool) bool {
	if g.nodeDown[id] == down {
		return false
	}
	g.version++
	g.nodeDown[id] = down
	return true
}

// NodeDown reports a node's failure state.
func (g *Graph) NodeDown(id int) bool { return g.nodeDown[id] }

// Sigmoid is f(u) from Eq. 3, with u in [0,1] (converted internally to
// percentage points). It ranges over (1,2): ≈1 for idle links and ≈2 for
// saturated ones, with the inflection at β=80%.
func Sigmoid(u float64) float64 {
	return 1/(1+math.Exp(Alpha*(Beta-u*100))) + 1
}

// Weight returns W_AB in milliseconds per Eq. 2, or +Inf if the link does
// not exist. The first factor is the expected RTT assuming a lost packet
// is recovered on the second attempt.
func (g *Graph) Weight(from, to int) float64 {
	slot, ok := g.eIdx[key(from, to)]
	if !ok {
		return math.Inf(1)
	}
	return g.linkWeight(g.linkAt(slot))
}

func (g *Graph) linkWeight(l *Link) float64 {
	if l.Down || g.nodeDown[l.From] || g.nodeDown[l.To] {
		return math.Inf(1)
	}
	rttMs := float64(l.RTT) / float64(time.Millisecond)
	expected := l.Loss*2*rttMs + (1-l.Loss)*rttMs
	u := math.Max(l.Util, math.Max(g.nodeUtil[l.From], g.nodeUtil[l.To]))
	return expected * Sigmoid(u)
}

// NeighborWeights returns id's out-neighbors and their Eq. 2 weights from
// the flat per-node weight row, rebuilding the row if the graph changed
// since it was last computed. The returned slices are owned by the graph
// and valid until the next mutation; callers must not retain or modify
// them.
func (g *Graph) NeighborWeights(id int) ([]int, []float64) {
	g.compact()
	a, b := g.rowStart[id], g.rowStart[id+1]
	if g.wStamp[id] != g.version {
		for s := a; s < b; s++ {
			g.wRow[s] = g.linkWeight(&g.links[s])
		}
		g.wStamp[id] = g.version
	}
	return g.cols[a:b], g.wRow[a:b]
}

// InNeighborWeights is the reverse-edge analogue of NeighborWeights: the
// in-neighbors of id and the weight of each incoming edge. The Brain's
// incremental revalidation runs Dijkstra toward a node on it. Same
// ownership rules as NeighborWeights.
func (g *Graph) InNeighborWeights(id int) ([]int, []float64) {
	g.compact()
	a, b := g.rRowStart[id], g.rRowStart[id+1]
	if g.rwStamp[id] != g.version {
		for s := a; s < b; s++ {
			g.rW[s] = g.linkWeight(&g.links[g.rSlot[s]])
		}
		g.rwStamp[id] = g.version
	}
	return g.rCols[a:b], g.rW[a:b]
}

// MaterializeWeights brings every forward and reverse weight row up to
// date, so that subsequent NeighborWeights / InNeighborWeights calls are
// pure reads. The Brain calls it once before fanning batch work out
// across goroutines: workers then share the graph without
// synchronization.
func (g *Graph) MaterializeWeights() {
	if g.matVer == g.version && len(g.pending) == 0 {
		return
	}
	g.compact()
	for id := 0; id < g.N; id++ {
		g.NeighborWeights(id)
		g.InNeighborWeights(id)
	}
	g.matVer = g.version
}

// LinkOverloaded reports whether the from→to link or either endpoint is at
// or beyond the overload target.
func (g *Graph) LinkOverloaded(from, to int) bool {
	l := g.Link(from, to)
	if l == nil || l.Down {
		return true
	}
	return l.Util >= OverloadTarget ||
		g.nodeUtil[from] >= OverloadTarget ||
		g.nodeUtil[to] >= OverloadTarget
}

// NodeOverloaded reports whether the node is at or beyond the target.
// A down node is unusable a fortiori.
func (g *Graph) NodeOverloaded(id int) bool {
	return g.nodeDown[id] || g.nodeUtil[id] >= OverloadTarget
}

// PathOverloaded reports whether any link or node along the path is
// overloaded. The path is a node sequence including both endpoints.
func (g *Graph) PathOverloaded(path []int) bool {
	for i, n := range path {
		if g.NodeOverloaded(n) {
			return true
		}
		if i+1 < len(path) && g.LinkOverloaded(n, path[i+1]) {
			return true
		}
	}
	return false
}

// PathRTT sums the link RTTs along a path (Inf if a link is missing).
func (g *Graph) PathRTT(path []int) time.Duration {
	var total time.Duration
	for i := 0; i+1 < len(path); i++ {
		l := g.Link(path[i], path[i+1])
		if l == nil {
			return time.Duration(math.MaxInt64)
		}
		total += l.RTT
	}
	return total
}

// Clone returns a deep copy; the Brain snapshots the global view before
// each routing round so discovery updates don't race the computation.
// CSR arrays copy as flat memmoves.
func (g *Graph) Clone() *Graph {
	g.compact()
	c := New(g.N)
	c.version = g.version
	copy(c.nodeUtil, g.nodeUtil)
	copy(c.nodeDown, g.nodeDown)
	c.rowStart = append([]int32(nil), g.rowStart...)
	c.cols = append([]int(nil), g.cols...)
	c.links = append([]Link(nil), g.links...)
	c.rRowStart = append([]int32(nil), g.rRowStart...)
	c.rCols = append([]int(nil), g.rCols...)
	c.rSlot = append([]int32(nil), g.rSlot...)
	c.wRow = make([]float64, len(g.links))
	c.rW = make([]float64, len(g.links))
	for k, v := range g.eIdx {
		c.eIdx[k] = v
	}
	return c
}

// SortedLinks returns every link ordered by (from, to) — a deterministic
// iteration order for callers that fold link state into reports or
// journals regardless of insertion history.
func (g *Graph) SortedLinks() []*Link {
	g.compact()
	out := make([]*Link, 0, len(g.links))
	for i := range g.links {
		out = append(out, &g.links[i])
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].To < out[b].To
	})
	return out
}
