// Package pktbuf is the data plane's packet-buffer pool: fixed-class,
// reference-counted, generation-stamped buffers that ride from a socket
// read (or an ingress fan-out) to the last transport submit without
// copying. The pool removes the two per-packet allocations that
// dominated the forwarding profile — the transport's receive copy and
// the per-subscriber frame copy — by letting one buffer be shared across
// an arbitrary fan-out under a reference count.
//
// The generation stamp is the use-after-free tripwire: every recycle
// bumps the buffer's generation, so a holder that kept a *Buf past its
// last Release can detect (in tests, deterministically) that the bytes
// under it now belong to someone else. Release below zero panics —
// a double release is a bug, never a tolerable race.
package pktbuf

import (
	"sync"
	"sync/atomic"

	"livenet/internal/telemetry"
)

// Size classes. Small covers MTU-sized media packets plus overlay
// framing; large covers a worst-case UDP datagram (the batched socket
// reader hands out large buffers so nothing is ever truncated).
const (
	SmallSize = 2 << 10
	LargeSize = 64 << 10
)

// Per-class retention bounds: a free list never holds more than this
// many buffers (the rest go to the garbage collector).
const (
	maxFreeSmall = 4096 // ≤ 8 MiB retained
	maxFreeLarge = 512  // ≤ 32 MiB retained
)

// Pool hands out refcounted buffers in two size classes, recycling them
// through per-class free lists. Requests beyond LargeSize are served
// with an exact, unpooled allocation (counted as a miss). The zero-ish
// pool from New works without telemetry; Instrument attaches hit/miss
// counters (nil-safe telemetry instruments keep the fast path branchless).
//
// The free lists are plain mutex-guarded LIFO stacks, not sync.Pool:
// recycling must be deterministic (the GC clears a sync.Pool at
// unpredictable times, which makes the hit/miss counters — and with
// them every replay-equality check over telemetry — nondeterministic).
type Pool struct {
	mu    sync.Mutex
	small []*Buf
	large []*Buf

	hits   *telemetry.Counter
	misses *telemetry.Counter
}

// New returns an empty pool with unregistered hit/miss instruments.
func New() *Pool {
	return &Pool{hits: &telemetry.Counter{}, misses: &telemetry.Counter{}}
}

// Instrument points the pool's hit/miss counters at registered
// instruments (e.g. node.frame_pool_hits). Call before first use.
func (p *Pool) Instrument(hits, misses *telemetry.Counter) {
	if hits != nil {
		p.hits = hits
	}
	if misses != nil {
		p.misses = misses
	}
}

// Stats returns the cumulative hit/miss counts.
func (p *Pool) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Buf is one pooled buffer. It starts with one reference; every
// additional holder Retains it and every holder Releases exactly once.
// The bytes are valid until the last Release; after that the buffer may
// be recycled and Gen() will have advanced.
type Buf struct {
	pool *Pool
	data []byte // backing array, capacity = class size (or exact if oversize)
	n    int    // bytes in use

	refs atomic.Int32
	gen  atomic.Uint32
}

// Get returns a buffer with length n and one reference. The contents
// are unspecified (callers overwrite them).
func (p *Pool) Get(n int) *Buf {
	var class *[]*Buf
	var size int
	switch {
	case n <= SmallSize:
		class, size = &p.small, SmallSize
	case n <= LargeSize:
		class, size = &p.large, LargeSize
	default:
		// Oversize: exact allocation, never recycled.
		p.misses.Inc()
		b := &Buf{data: make([]byte, n), n: n}
		b.refs.Store(1)
		return b
	}
	var b *Buf
	p.mu.Lock()
	if fn := len(*class); fn > 0 {
		b = (*class)[fn-1]
		(*class)[fn-1] = nil
		*class = (*class)[:fn-1]
	}
	p.mu.Unlock()
	if b == nil {
		p.misses.Inc()
		b = &Buf{pool: p, data: make([]byte, size)}
	} else {
		p.hits.Inc()
	}
	b.n = n
	b.refs.Store(1)
	return b
}

// Bytes returns the buffer's in-use slice.
func (b *Buf) Bytes() []byte { return b.data[:b.n] }

// Len returns the in-use length.
func (b *Buf) Len() int { return b.n }

// Truncate shortens the in-use length (e.g. to the datagram size a
// batched read actually produced). Growing past the initial Get length
// is allowed up to the backing capacity.
func (b *Buf) Truncate(n int) {
	if n < 0 || n > len(b.data) {
		panic("pktbuf: Truncate out of range")
	}
	b.n = n
}

// Retain adds a reference and returns b for call chaining.
func (b *Buf) Retain() *Buf {
	if b.refs.Add(1) <= 1 {
		panic("pktbuf: Retain of a released buffer")
	}
	return b
}

// Release drops one reference; the last release recycles the buffer
// (bumping its generation). Releasing more times than retained panics.
func (b *Buf) Release() {
	switch r := b.refs.Add(-1); {
	case r > 0:
		return
	case r < 0:
		panic("pktbuf: Release of a free buffer")
	}
	b.gen.Add(1)
	if p := b.pool; p != nil {
		p.mu.Lock()
		switch cap(b.data) {
		case SmallSize:
			if len(p.small) < maxFreeSmall {
				p.small = append(p.small, b)
			}
		case LargeSize:
			if len(p.large) < maxFreeLarge {
				p.large = append(p.large, b)
			}
		}
		p.mu.Unlock()
	}
}

// Gen returns the buffer's generation stamp. It advances on every
// recycle; a holder that cached (buf, gen) can verify the bytes still
// belong to it. Test harnesses use this to prove pool-reuse safety.
func (b *Buf) Gen() uint32 { return b.gen.Load() }

// Refs returns the current reference count (introspection for tests).
func (b *Buf) Refs() int32 { return b.refs.Load() }
