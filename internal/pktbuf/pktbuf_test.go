package pktbuf

import (
	"sync"
	"testing"
)

func TestGetReleaseRecycles(t *testing.T) {
	p := New()
	b := p.Get(100)
	if b.Len() != 100 || len(b.Bytes()) != 100 {
		t.Fatalf("len = %d", b.Len())
	}
	g := b.Gen()
	b.Release()
	if b.Gen() != g+1 {
		t.Fatalf("generation did not advance on recycle: %d -> %d", g, b.Gen())
	}
	b2 := p.Get(50)
	if b2 != b {
		t.Fatal("small-class buffer was not recycled")
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	b2.Release()
}

func TestRetainDefersRecycle(t *testing.T) {
	p := New()
	b := p.Get(10)
	g := b.Gen()
	b.Retain()
	b.Release()
	if b.Gen() != g {
		t.Fatal("buffer recycled while a reference remained")
	}
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", b.Refs())
	}
	b.Release()
	if b.Gen() != g+1 {
		t.Fatal("buffer not recycled after last release")
	}
}

func TestOversizeIsExactAndUnpooled(t *testing.T) {
	p := New()
	b := p.Get(LargeSize + 1)
	if len(b.Bytes()) != LargeSize+1 {
		t.Fatalf("len = %d", len(b.Bytes()))
	}
	b.Release()
	b2 := p.Get(LargeSize + 1)
	if b2 == b {
		t.Fatal("oversize buffer must not be recycled")
	}
	b2.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b := New().Get(10)
	b.Release()
	b.Release()
}

// TestConcurrentFanOutSafety is the pool-reuse safety proof the data
// plane relies on: one producer hands each buffer to N concurrent
// consumers (as the FIB fan-out does), each consumer verifies the bytes
// and generation are intact before its Release, and only the last
// Release may recycle. Run under -race this also proves the refcount
// protocol publishes the buffer contents correctly.
func TestConcurrentFanOutSafety(t *testing.T) {
	p := New()
	const rounds, fanout = 400, 8
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		b := p.Get(64)
		gen := b.Gen()
		fill := byte(r)
		for i := range b.Bytes() {
			b.Bytes()[i] = fill
		}
		for i := 0; i < fanout; i++ {
			b.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if b.Gen() != gen {
					t.Error("buffer recycled while referenced")
				}
				for _, v := range b.Bytes() {
					if v != fill {
						t.Errorf("byte %d != %d: buffer reused under a live reference", v, fill)
						break
					}
				}
				b.Release()
			}()
		}
		b.Release() // creator's reference
		wg.Wait()   // round barrier: next Get may legitimately recycle
	}
}
