module livenet

go 1.22
