package livenet

import (
	"encoding/binary"
	"os"
	"strings"
	"testing"
	"time"

	"livenet/internal/client"
	"livenet/internal/core"
	"livenet/internal/media"
	"livenet/internal/netem"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/telemetry"
	"livenet/internal/wire"
)

// forwardHarness drives one overlay node's fast forwarding path
// (broadcaster upload -> producer -> one overlay subscriber) packet by
// packet, for the telemetry zero-overhead benchmark and regression test.
type forwardHarness struct {
	loop     *sim.Loop
	seq      uint16
	rtpBuf   []byte
	frameBuf []byte
	send     func(data []byte)
}

func newForwardHarness(reg *telemetry.Registry) *forwardHarness {
	const (
		producer    = 0
		subscriber  = 1
		broadcaster = 1000
		sid         = 100
	)
	loop := sim.NewLoop(1)
	net := netem.New(loop, loop.RNG("netem"))
	link := netem.LinkConfig{RTT: 10 * time.Millisecond, BandwidthBps: 1e9}
	net.AddDuplex(broadcaster, producer, link)
	net.AddDuplex(producer, subscriber, link)
	mk := func(id int, r *telemetry.Registry) *node.Node {
		return node.New(node.Config{
			ID: id, Clock: loop, Net: net,
			PathLookup: func(_ uint32, _ int, cb func([][]int, error)) { cb(nil, nil) },
			LinkRTT:    func(int) time.Duration { return 10 * time.Millisecond },
			IsOverlay:  func(id int) bool { return id < broadcaster },
			MinRateBps: 10e6,
			Telemetry:  r,
		})
	}
	n0 := mk(producer, reg)
	n1 := mk(subscriber, nil)
	net.Handle(producer, n0.OnMessage)
	net.Handle(subscriber, n1.OnMessage)

	// One real encoded packet as the wire template; each step patches the
	// sequence number in place so the hole detector sees a gapless flow.
	enc := media.NewEncoder(media.DefaultEncoderConfig(1_000_000), loop.RNG("media"))
	pz := media.NewPacketizer(sid)
	pkts := pz.Packetize(enc.NextFrame(), 200, nil)
	h := &forwardHarness{loop: loop, seq: pkts[0].SequenceNumber, rtpBuf: pkts[0].Marshal(nil)}
	h.send = func(data []byte) { net.Send(broadcaster, producer, data) }

	// Adopt the producer role, then subscribe the downstream node.
	h.step()
	sub := wire.Subscribe{StreamID: sid, Requester: subscriber}
	net.Send(subscriber, producer, sub.Marshal(nil))
	loop.RunUntil(loop.Now() + 50*time.Millisecond)
	return h
}

// step pushes one RTP packet through ingress -> classify -> forward ->
// pacer drain, advancing the clock 2 ms so the pacer releases it.
func (h *forwardHarness) step() {
	h.seq++
	binary.BigEndian.PutUint16(h.rtpBuf[2:], h.seq)
	now10us := uint32(h.loop.Now() / (10 * time.Microsecond))
	h.frameBuf = wire.FrameRTP(h.frameBuf[:0], now10us, h.rtpBuf)
	h.send(h.frameBuf)
	h.loop.RunUntil(h.loop.Now() + 2*time.Millisecond)
}

// Enabling the metrics registry must not add allocations to the node's
// forward path: every instrument is a pre-resolved atomic counter.
func TestForwardPathTelemetryAddsNoAllocs(t *testing.T) {
	off := newForwardHarness(nil)
	on := newForwardHarness(telemetry.NewRegistry())
	allocsOff := testing.AllocsPerRun(500, off.step)
	allocsOn := testing.AllocsPerRun(500, on.step)
	if allocsOn > allocsOff+0.5 {
		t.Fatalf("telemetry added allocations on the forward path: %.2f/op with registry vs %.2f/op without", allocsOn, allocsOff)
	}
}

// Every metric name registered by an instrumented cluster must be
// documented in OBSERVABILITY.md — the docs-freshness gate run by
// `make docs` (and `make ci`).
func TestObservabilityDocCoversMetrics(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("OBSERVABILITY.md: %v", err)
	}
	c := core.NewCluster(core.ClusterConfig{Seed: 1, Sites: 4, Telemetry: true})
	defer c.Close()
	bc := c.NewBroadcasterAt(31.2, 121.5, 100, media.DefaultRenditions[:1])
	bc.Start()
	c.Run(2 * time.Second)
	c.NewViewerAt(39.9, 116.4, bc.StreamID(0))
	c.Run(3 * time.Second)

	// Replicated and federated clusters register additional brain.* /
	// brainfed.* instruments on their BrainTel; the doc must cover the
	// whole catalogue, not just the single-Brain subset.
	rep := core.NewCluster(core.ClusterConfig{Seed: 2, Sites: 4, Replicas: 3, Telemetry: true})
	defer rep.Close()
	fed := core.NewCluster(core.ClusterConfig{Seed: 3, Sites: 12, Regions: 3, Telemetry: true})
	defer fed.Close()

	// Cohort-aggregated macro runs publish population-weighted QoE as
	// cohort.* instruments (DESIGN.md §11); walk that registry too.
	var cohort client.Cohort
	cohort.AddViewer(120, 25, 2, 30, 400, 0, 0)
	cohort.AddBatch(1000, client.CohortBatch{MeanViewSecs: 72.5, PZeroStall: 0.97, PFastStart: 0.95})
	cohortTel := telemetry.NewRegistry()
	cohort.Publish(cohortTel)

	var missing []string
	seen := 0
	for _, r := range []*telemetry.Registry{c.NodeTel[0], c.ClientTel, c.NetTel, c.BrainTel, rep.BrainTel, fed.BrainTel, cohortTel} {
		for _, name := range r.Names() {
			seen++
			if !strings.Contains(string(doc), name) {
				missing = append(missing, name)
			}
		}
	}
	if seen < 20 {
		t.Fatalf("only %d metrics registered; the instrumented cluster should expose the full catalogue", seen)
	}
	if len(missing) > 0 {
		t.Fatalf("metrics missing from OBSERVABILITY.md: %v", missing)
	}
}
