// Costream demonstrates seamless stream switching (§5.2): two shops
// co-live-stream, the solo broadcast ends and a co-broadcast stream
// starts, and the consumer node resubscribes on the viewer's behalf —
// flipping forwarding only once a complete GoP of the new stream is
// cached, so the viewer sees no stall across the switch.
//
//	go run ./examples/costream
package main

import (
	"fmt"
	"time"

	"livenet"
)

func main() {
	cluster := livenet.NewCluster(livenet.ClusterConfig{Seed: 3, Sites: 12})
	defer cluster.Close()

	// Shop A broadcasts solo from Hangzhou.
	solo := cluster.NewBroadcasterAt(30.3, 120.2, 100, livenet.DefaultRenditions[2:])
	solo.Start()
	cluster.Run(2 * time.Second)

	// A viewer in Beijing watches the solo stream.
	viewer := cluster.NewViewerAt(39.9, 116.4, solo.StreamID(0))
	cluster.Run(4 * time.Second)
	before := viewer.Stats()
	fmt.Printf("watching solo stream %d: frames=%d stalls=%d\n",
		solo.StreamID(0), before.FramesPlayed, before.Stalls)

	// Shop B joins: co-streaming starts as a NEW stream (the solo stream
	// ceases, §5.2). The co-broadcast is produced near shop A.
	co := cluster.NewBroadcasterAt(30.3, 120.2, 200, livenet.DefaultRenditions[2:])
	co.Start()
	cluster.Run(time.Second) // let the co-stream's first GoP form

	// The consumer node switches the viewer on its behalf — the client
	// never resubscribes itself (thin clients, §7.2).
	consumer := cluster.Nodes[viewer.ConsumerNode]
	done := consumer.SwitchClientStream(viewer.Viewer.ID, solo.StreamID(0), co.StreamID(0))
	cluster.Run(3 * time.Second)
	select {
	case <-done:
		fmt.Println("switch completed: consumer resubscribed and flipped at a GoP boundary")
	default:
		fmt.Println("switch still pending (no complete GoP of the new stream yet)")
	}
	solo.Stop()
	cluster.Run(4 * time.Second)

	after := viewer.Stats()
	fmt.Printf("after co-stream switch: frames=%d (+%d) stalls=%d (+%d)\n",
		after.FramesPlayed, after.FramesPlayed-before.FramesPlayed,
		after.Stalls, after.Stalls-before.Stalls)
	if after.Stalls == before.Stalls {
		fmt.Println("=> no stalls across the switch: the viewer never noticed")
	}
	fmt.Printf("consumer now forwards stream %d; old stream torn down: %v\n",
		co.StreamID(0), !consumer.HasStream(solo.StreamID(0)))
}
