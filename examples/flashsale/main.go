// Flashsale reproduces the paper's Double 12 case study (§6.5) at small
// scale with the session-level evaluation engine: a 13-day run in which
// the festival (20:00 Dec 11 → 23:59 Dec 12) doubles the load, and
// LiveNet's metrics stay flat through the spike.
//
//	go run ./examples/flashsale
package main

import (
	"fmt"

	"livenet"
	"livenet/internal/workload"
)

func main() {
	cfg := livenet.EvalConfig{
		Seed:   12,
		Days:   13,
		Sites:  48,
		System: livenet.SystemLiveNet,
	}
	cfg.Workload.PeakViewsPerSec = 1
	cfg.Workload.Channels = 150
	cfg.Workload.Flash = []workload.FlashEvent{workload.Double12()}

	fmt.Println("simulating 13 days of Taobao-Live-like load across the Double 12 festival...")
	res := livenet.RunEvaluation(cfg)
	fmt.Printf("total views: %d\n\n", res.Views)

	fmt.Println("day  peak-concurrency  0-stall%  fast-startup%  cdn-ms  unique-paths")
	maxPeak := 0
	for d := 0; d < cfg.Days; d++ {
		if ds := res.ByDay[d]; ds != nil && ds.PeakConcurrency > maxPeak {
			maxPeak = ds.PeakConcurrency
		}
	}
	for d := 0; d < cfg.Days; d++ {
		ds := res.ByDay[d]
		if ds == nil {
			continue
		}
		marker := ""
		if d == 10 || d == 11 {
			marker = "  <= Double 12"
		}
		fmt.Printf("%3d  %6d (%.2fx)     %5.1f     %5.1f       %5.0f    %5d%s\n",
			d+1, ds.PeakConcurrency, float64(ds.PeakConcurrency)/float64(maxPeak),
			ds.ZeroStall.Percent(), ds.FastStart.Percent(),
			ds.CDNDelayMs.Median(), ds.UniquePaths, marker)
	}

	// The paper's observation: despite ~2x load, no metric degradation,
	// and ~20% more unique overlay paths during the festival.
	normal := res.ByDay[9] // Dec 10
	fest := res.ByDay[11]  // Dec 12: the full festival day
	fmt.Printf("\nfestival vs normal day: peak %.2fx, 0-stall %+.1f pts, startup %+.1f pts, unique paths %+.0f%%\n",
		float64(fest.PeakConcurrency)/float64(normal.PeakConcurrency),
		fest.ZeroStall.Percent()-normal.ZeroStall.Percent(),
		fest.FastStart.Percent()-normal.FastStart.Percent(),
		100*(float64(fest.UniquePaths)/float64(normal.UniquePaths)-1))
}
