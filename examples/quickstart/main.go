// Quickstart: build a small LiveNet deployment on the in-process network
// emulator, broadcast 10 seconds of synthetic simulcast video, attach a
// few viewers around the world, and print their QoE — all through the
// public livenet API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"livenet"
)

func main() {
	// A 16-site flat CDN with geographic RTTs and near-lossless links.
	cluster := livenet.NewCluster(livenet.ClusterConfig{
		Seed:        7,
		Sites:       16,
		DiurnalLoss: true,
	})
	defer cluster.Close()

	// A broadcaster in Shanghai uploads two simulcast renditions; DNS
	// redirection maps it to the nearest site, which becomes the
	// stream's producer node.
	bc := cluster.NewBroadcasterAt(31.2, 121.5, 100, livenet.DefaultRenditions[:2])
	bc.Start()
	fmt.Printf("broadcaster -> producer node %d, streams %d (720p) and %d (480p)\n",
		bc.Producer, bc.StreamID(0), bc.StreamID(1))

	// Let the stream warm up (the producer's GoP cache fills).
	cluster.Run(2 * time.Second)

	// Viewers in Beijing, Singapore and London attach to the 720p stream.
	locations := []struct {
		name     string
		lat, lon float64
	}{
		{"Beijing", 39.9, 116.4},
		{"Singapore", 1.35, 103.8},
		{"London", 51.5, -0.1},
	}
	views := make([]*livenet.Viewing, 0, len(locations))
	for _, loc := range locations {
		v := cluster.NewViewerAt(loc.lat, loc.lon, bc.StreamID(0))
		fmt.Printf("%-10s -> consumer node %d (local hit: %v)\n", loc.name, v.ConsumerNode, v.LocalHit)
		views = append(views, v)
	}

	// Stream for 10 seconds of virtual time (finishes in milliseconds of
	// real time on the emulator).
	cluster.Run(10 * time.Second)

	fmt.Println("\nper-view QoE:")
	for i, v := range views {
		s := v.Stats()
		fmt.Printf("%-10s startup=%-8v frames=%-4d stalls=%d streaming delay=%v (fast startup: %v)\n",
			locations[i].name,
			s.StartupDelay.Round(time.Millisecond),
			s.FramesPlayed, s.Stalls,
			s.MedianStreamingDelay().Round(time.Millisecond),
			s.FastStartup())
	}

	// The actual overlay path each consumer ended up with.
	fmt.Println("\noverlay paths (producer -> ... -> consumer):")
	for i, v := range views {
		fmt.Printf("%-10s %v\n", locations[i].name, cluster.Nodes[v.ConsumerNode].StreamPath(bc.StreamID(0)))
	}

	bm := cluster.Brain.Metrics()
	fmt.Printf("\nStreaming Brain: %d lookups, %d PIB hits, %d active streams\n",
		bm.Lookups, bm.PIBHits, bm.StreamsActive)
}
