// Mobility demonstrates §7.1's mobility support on the packet-level
// cluster:
//
//   - Viewer mobility: a viewer moves (e.g. cellular → WiFi, new city);
//     the client simply resubscribes through its new optimal consumer
//     node, and the playback buffer hides the transition.
//
//   - Broadcaster mobility: when the broadcaster's optimal producer node
//     changes, the Streaming Brain instructs the OLD producer to
//     subscribe to the NEW one, so none of the existing overlay paths
//     (and none of the viewers) need to change.
//
//     go run ./examples/mobility
package main

import (
	"fmt"
	"time"

	"livenet"
)

func main() {
	cluster := livenet.NewCluster(livenet.ClusterConfig{Seed: 9, Sites: 16})
	defer cluster.Close()

	bc := cluster.NewBroadcasterAt(31.2, 121.5, 100, livenet.DefaultRenditions[2:])
	bc.Start()
	cluster.Run(2 * time.Second)
	sid := bc.StreamID(0)

	// --- Viewer mobility ---
	fmt.Println("== viewer mobility ==")
	v1 := cluster.NewViewerAt(39.9, 116.4, sid) // Beijing
	cluster.Run(4 * time.Second)
	s1 := v1.Stats()
	fmt.Printf("before move: consumer node %d, frames=%d stalls=%d\n",
		v1.ConsumerNode, s1.FramesPlayed, s1.Stalls)

	// The viewer moves to Shenzhen: detach and resubscribe via the new
	// nearest consumer (the client-side playback buffer covers the gap).
	cluster.Detach(v1)
	v2 := cluster.NewViewerAt(22.5, 114.1, sid)
	cluster.Run(4 * time.Second)
	s2 := v2.Stats()
	fmt.Printf("after move:  consumer node %d, startup=%v frames=%d stalls=%d\n",
		v2.ConsumerNode, s2.StartupDelay.Round(time.Millisecond), s2.FramesPlayed, s2.Stalls)

	// --- Broadcaster mobility ---
	fmt.Println("\n== broadcaster mobility ==")
	oldProducer := bc.Producer
	oldPath := cluster.Nodes[v2.ConsumerNode].StreamPath(sid)
	fmt.Printf("producer node %d, viewer path %v\n", oldProducer, oldPath)

	// The broadcaster moves: its uploads now land on a different site.
	// Rather than re-routing every existing path, the Brain instructs the
	// old producer to subscribe to the new one.
	newBC := cluster.NewBroadcasterAt(39.9, 116.4, 100, livenet.DefaultRenditions[2:])
	if newBC.Producer == oldProducer {
		fmt.Println("(new location maps to the same site; demo world too small — skipping)")
		return
	}
	bc.Stop()
	newBC.Start() // same stream ID 100: the upload continues from the new site
	cluster.Brain.RegisterStream(sid, newBC.Producer)
	cluster.Nodes[oldProducer].MigrateProducer(sid, []int{newBC.Producer, oldProducer})
	cluster.Run(5 * time.Second)

	newPath := cluster.Nodes[v2.ConsumerNode].StreamPath(sid)
	s3 := v2.Stats()
	fmt.Printf("new producer node %d; viewer path unchanged downstream: %v\n", newBC.Producer, newPath)
	fmt.Printf("viewer kept playing: frames=%d stalls=%d (delta stalls=%d)\n",
		s3.FramesPlayed, s3.Stalls, s3.Stalls-s2.Stalls)
}
