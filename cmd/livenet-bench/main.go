// livenet-bench runs the full evaluation harness: every table and figure
// of the paper's §6 plus the DESIGN.md ablations, printed in the same
// row/series structure the paper reports. Use -quick for a scaled-down
// run; the default reproduces the 20-day, 64-site configuration.
//
// Independent simulation runs (the two systems, ablation variants, loss
// sweep points, and extra seeds) fan out across CPU cores; results are
// bit-identical to -parallel=false because every run owns a private
// event loop and seeded RNG.
//
//	livenet-bench                 # full 20-day evaluation (minutes)
//	livenet-bench -quick          # 2-day smoke run (seconds)
//	livenet-bench -seeds 5        # 5 workload seeds, mean ± 95% CI table
//	livenet-bench -parallel=false # serial reference schedule
//	livenet-bench -chaos          # fault-tolerance experiments only
//	livenet-bench -telemetry      # observability report (waterfalls + GlobalView)
//	livenet-bench -out FILE       # additionally write the report to FILE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"livenet/internal/eval"
	"livenet/internal/perfbench"
	"livenet/internal/runner"
)

func main() {
	quick := flag.Bool("quick", false, "run the scaled-down configuration")
	days := flag.Int("days", 0, "override the number of simulated days")
	sites := flag.Int("sites", 0, "override the number of CDN sites")
	maxPeers := flag.Int("peers", 0, "sparse overlay: links per site to its nearest peers (0 = full mesh)")
	regions := flag.Int("regions", 0, "federate the Streaming Brain into per-region shards (0 = monolith)")
	seed := flag.Int64("seed", 42, "simulation seed")
	seeds := flag.Int("seeds", 1, "workload seeds per system (N>1 adds a mean ± 95% CI table)")
	parallel := flag.Bool("parallel", true, "fan independent runs out across CPU cores")
	workers := flag.Int("workers", 0, "worker cap for -parallel (0 = GOMAXPROCS)")
	outFile := flag.String("out", "", "also write the report to this file")
	skipAblations := flag.Bool("no-ablations", false, "skip the ablation studies")
	chaosOnly := flag.Bool("chaos", false, "run only the fault-tolerance experiments")
	benchJSON := flag.String("bench-json", "", "run the perfbench suite and write a JSON snapshot to this file")
	telemetryOnly := flag.Bool("telemetry", false, "run only the observability report (waterfalls + GlobalView)")
	viewers := flag.Int("viewers", 0, "cohort-aggregated run sized to this many peak concurrent viewers (0 = per-viewer engine)")
	hours := flag.Int("hours", 0, "simulate whole hours instead of days (0 = use days)")
	tracer := flag.Float64("tracer", 0, "exact-tracer sampling probability for -viewers runs (0 = default 0.002)")
	macroOnly := flag.Bool("macro-only", false, "run only the paired macro simulation: Table 1 plus the cohort summary")
	benchCheck := flag.String("bench-check", "", "re-run the hot-path benchmarks and fail on alloc regressions vs this committed -bench-json snapshot")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "livenet-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchCheck != "" {
		if err := runBenchCheck(*benchCheck); err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		return
	}

	o := eval.Full()
	if *quick {
		o = eval.Quick()
	}
	if *days > 0 {
		o.Days = *days
	}
	if *sites > 0 {
		o.Sites = *sites
	}
	if *maxPeers > 0 {
		o.MaxPeers = *maxPeers
	}
	if *regions > 0 {
		o.Regions = *regions
	}
	if *hours > 0 {
		o.Hours = *hours
	}
	if *viewers > 0 {
		o.Viewers = *viewers
		o.TracerSample = *tracer
		if o.Hours == 0 && *days == 0 {
			// A sized run defaults to a 16-hour horizon: one diurnal cycle
			// through the evening peak, not the full 20-day trace.
			o.Hours = 16
		}
	}
	o.Seed = *seed

	opts := runner.Parallel()
	if !*parallel {
		opts = runner.Serial()
	}
	if *workers > 0 {
		opts.Workers = *workers
	}
	session := eval.NewSession(opts)

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *chaosOnly {
		fmt.Fprintf(out, "LiveNet fault-tolerance evaluation — seed %d\n\n", o.Seed)
		start := time.Now()
		fmt.Fprintln(out, eval.FaultReport(o.Seed))
		fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *telemetryOnly {
		fmt.Fprintf(out, "LiveNet observability report — seed %d (see OBSERVABILITY.md)\n\n", o.Seed)
		start := time.Now()
		fmt.Fprintln(out, eval.TelemetryReport(o.Seed))
		fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *macroOnly {
		fmt.Fprintf(out, "LiveNet macro run — %s, %d sites, seed %d\n", horizonLabel(o), o.Sites, o.Seed)
		start := time.Now()
		r := session.Run(o)
		fmt.Fprintf(out, "simulated %d views per system in %v\n\n", r.LN.Views, time.Since(start).Round(time.Millisecond))
		fmt.Fprintln(out, eval.Table1(r))
		if cs := eval.CohortSummary(r); cs != "" {
			fmt.Fprintln(out, cs)
		}
		fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	fmt.Fprintf(out, "LiveNet evaluation — %s, %d sites, peak %.1f views/s, seed %d\n",
		horizonLabel(o), o.Sites, o.PeakViewsPerSec, o.Seed)
	start := time.Now()
	r := session.Run(o)
	fmt.Fprintf(out, "simulated %d views per system in %v\n\n", r.LN.Views, time.Since(start).Round(time.Millisecond))

	sections := []string{
		eval.Table1(r),
	}
	if cs := eval.CohortSummary(r); cs != "" {
		sections = append(sections, cs)
	}
	sections = append(sections,
		eval.Fig2(r),
		eval.Fig8a(r),
		eval.Fig8b(r),
		eval.Fig8c(r),
		eval.Fig9(r),
		eval.Fig10a(r),
		eval.Fig10b(r),
		eval.Fig10c(r),
		eval.Table2(r),
		eval.Fig11(r),
		eval.Fig12(r),
		eval.Fig13(r),
	)
	// Figure 14 / Table 3 need the festival window; the full run includes
	// it, a short run may not reach day 13.
	if o.Days >= 13 && o.Double12 {
		sections = append(sections, eval.Fig14(r), eval.Table3(r))
	} else {
		sections = append(sections, "Figure 14 / Table 3 skipped: run needs >= 13 days with -quick off\n")
	}
	for _, s := range sections {
		fmt.Fprintln(out, s)
	}

	if *seeds > 1 {
		fmt.Fprintln(out, strings.Repeat("-", 60))
		m := session.RunSeeds(o, *seeds)
		fmt.Fprintln(out, eval.SeedTable(m))
	}

	if !*skipAblations {
		fmt.Fprintln(out, strings.Repeat("-", 60))
		fmt.Fprintln(out, session.FastSlowTable(o.Seed, []float64{0, 0.005, 0.01, 0.02}))
		fmt.Fprintln(out, eval.AblationLinkWeights(o.Seed))
		ablOpt := o
		ablOpt.Days = min(o.Days, 2)
		ablOpt.Double12 = false
		fmt.Fprintln(out, session.MacroAblations(ablOpt))
	}

	fmt.Fprintln(out, strings.Repeat("-", 60))
	fmt.Fprintln(out, eval.FaultReport(o.Seed))

	rep := session.Report()
	wall := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(out, "total wall time: %v\n", wall)
	if rep.Jobs > 0 {
		fmt.Fprintf(out, "scheduler: %d runs, serial-equivalent %v, batch wall %v, speedup %.2fx",
			rep.Jobs, rep.Serial.Round(time.Millisecond), rep.Wall.Round(time.Millisecond), rep.Speedup())
		if hits := session.MemoHits(); hits > 0 {
			fmt.Fprintf(out, ", %d runs served from memo", hits)
		}
		fmt.Fprintln(out)
	}
}

// horizonLabel describes the simulated horizon and sizing of a run.
func horizonLabel(o eval.Options) string {
	h := fmt.Sprintf("%d days", o.Days)
	if o.Hours > 0 {
		h = fmt.Sprintf("%d hours", o.Hours)
	}
	if o.Viewers > 0 {
		h += fmt.Sprintf(", %d peak viewers (cohort-aggregated)", o.Viewers)
	}
	return h
}

// benchRecord is one perfbench result row in the JSON snapshot.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// PPS is the benchmark's self-reported packets-per-second metric
	// (the data-plane throughput suite); 0 for benchmarks without one.
	PPS float64 `json:"pps,omitempty"`
	// Extra carries every other custom metric the benchmark reported
	// (e.g. the federated-Brain suite's shards / max_shard_reports /
	// links fan-in shape).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchSnapshot is the JSON document `-bench-json` writes: the whole
// perfbench suite on this machine, for cross-PR comparison.
type benchSnapshot struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Results   []benchRecord `json:"results"`
}

// runBenchJSON runs every registered perfbench benchmark via
// testing.Benchmark and writes the snapshot to path.
func runBenchJSON(path string) error {
	snap := benchSnapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	for _, s := range perfbench.Specs() {
		fmt.Fprintf(os.Stderr, "bench %-22s", s.Name)
		r := testing.Benchmark(s.Func)
		rec := benchRecord{
			Name:        s.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			PPS:         r.Extra["pps"],
		}
		for k, v := range r.Extra {
			if k == "pps" {
				continue
			}
			if rec.Extra == nil {
				rec.Extra = map[string]float64{}
			}
			rec.Extra[k] = v
		}
		fmt.Fprintf(os.Stderr, " %14.1f ns/op %10d allocs/op  (n=%d)\n", rec.NsPerOp, rec.AllocsPerOp, r.N)
		snap.Results = append(snap.Results, rec)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// hotPathBenchmarks are the allocation-diet benchmarks the CI regression
// guard re-runs: paths where a single new alloc per op compounds into
// fleet-scale throughput loss. Timing is machine-dependent so ns/op is
// not gated, but allocs/op is deterministic at steady state.
var hotPathBenchmarks = map[string]bool{
	"BrainLookup":           true,
	"GraphNeighborWeights":  true,
	"YenKSPFullMesh":        true,
	"LoopSchedule":          true,
	"NetemSend":             true,
	"NodeForwardFanout10":   true,
	"NodeForwardFanout100":  true,
	"NodeForwardFanout1000": true,
	"UDPLoopbackEcho":       true,
	"UDPLoopbackBatchRelay": true,
}

// runBenchCheck re-runs the hot-path benchmarks and compares allocs/op
// against the committed snapshot: a benchmark may not exceed its
// recorded allocs/op by more than 10% (and a zero-alloc benchmark must
// stay at zero). Missing snapshot entries fail, so the snapshot cannot
// silently fall behind the suite.
func runBenchCheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	baseline := make(map[string]benchRecord, len(snap.Results))
	for _, r := range snap.Results {
		baseline[r.Name] = r
	}
	var failures []string
	for _, s := range perfbench.Specs() {
		if !hotPathBenchmarks[s.Name] {
			continue
		}
		base, ok := baseline[s.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from %s (regenerate with -bench-json)", s.Name, path))
			continue
		}
		fmt.Fprintf(os.Stderr, "check %-22s", s.Name)
		r := testing.Benchmark(s.Func)
		got := r.AllocsPerOp()
		allowed := base.AllocsPerOp + base.AllocsPerOp/10
		verdict := "ok"
		if got > allowed {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op, snapshot %d (allowed <= %d)",
				s.Name, got, base.AllocsPerOp, allowed))
		}
		fmt.Fprintf(os.Stderr, " %6d allocs/op (snapshot %6d)  %s\n", got, base.AllocsPerOp, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("hot-path alloc regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
