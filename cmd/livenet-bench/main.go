// livenet-bench runs the full evaluation harness: every table and figure
// of the paper's §6 plus the DESIGN.md ablations, printed in the same
// row/series structure the paper reports. Use -quick for a scaled-down
// run; the default reproduces the 20-day, 64-site configuration.
//
//	livenet-bench            # full 20-day evaluation (minutes)
//	livenet-bench -quick     # 2-day smoke run (seconds)
//	livenet-bench -out FILE  # additionally write the report to FILE
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"livenet/internal/eval"
)

func main() {
	quick := flag.Bool("quick", false, "run the scaled-down configuration")
	days := flag.Int("days", 0, "override the number of simulated days")
	sites := flag.Int("sites", 0, "override the number of CDN sites")
	seed := flag.Int64("seed", 42, "simulation seed")
	outFile := flag.String("out", "", "also write the report to this file")
	skipAblations := flag.Bool("no-ablations", false, "skip the ablation studies")
	flag.Parse()

	o := eval.Full()
	if *quick {
		o = eval.Quick()
	}
	if *days > 0 {
		o.Days = *days
	}
	if *sites > 0 {
		o.Sites = *sites
	}
	o.Seed = *seed

	var out io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "livenet-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "LiveNet evaluation — %d days, %d sites, peak %.1f views/s, seed %d\n",
		o.Days, o.Sites, o.PeakViewsPerSec, o.Seed)
	start := time.Now()
	r := eval.Run(o)
	fmt.Fprintf(out, "simulated %d views per system in %v\n\n", r.LN.Views, time.Since(start).Round(time.Millisecond))

	sections := []string{
		eval.Table1(r),
		eval.Fig2(r),
		eval.Fig8a(r),
		eval.Fig8b(r),
		eval.Fig8c(r),
		eval.Fig9(r),
		eval.Fig10a(r),
		eval.Fig10b(r),
		eval.Fig10c(r),
		eval.Table2(r),
		eval.Fig11(r),
		eval.Fig12(r),
		eval.Fig13(r),
	}
	// Figure 14 / Table 3 need the festival window; the full run includes
	// it, a short run may not reach day 13.
	if o.Days >= 13 && o.Double12 {
		sections = append(sections, eval.Fig14(r), eval.Table3(r))
	} else {
		sections = append(sections, "Figure 14 / Table 3 skipped: run needs >= 13 days with -quick off\n")
	}
	for _, s := range sections {
		fmt.Fprintln(out, s)
	}

	if !*skipAblations {
		fmt.Fprintln(out, strings.Repeat("-", 60))
		fmt.Fprintln(out, eval.FastSlowTable(o.Seed, []float64{0, 0.005, 0.01, 0.02}))
		fmt.Fprintln(out, eval.AblationLinkWeights(o.Seed))
		ablOpt := o
		ablOpt.Days = min(o.Days, 2)
		ablOpt.Double12 = false
		fmt.Fprintln(out, eval.MacroAblations(ablOpt))
	}
	fmt.Fprintf(out, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
