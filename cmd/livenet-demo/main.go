// livenet-demo spawns a complete LiveNet slice over real loopback UDP
// sockets: a Streaming Brain, N overlay nodes, one broadcaster and
// several viewers — then streams synthetic video for a few seconds and
// prints the per-view QoE and per-node counters. This is the multi-node
// deployment path (the same wiring cmd/livenet-node and
// cmd/livenet-brain use across machines), condensed into one process.
//
//	livenet-demo -nodes 4 -viewers 3 -duration 8s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"livenet/internal/brain"
	"livenet/internal/client"
	"livenet/internal/media"
	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/udprun"
)

func main() {
	nodes := flag.Int("nodes", 4, "number of overlay nodes")
	viewers := flag.Int("viewers", 3, "number of viewers")
	duration := flag.Duration("duration", 8*time.Second, "streaming duration")
	flag.Parse()
	if err := run(*nodes, *viewers, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "livenet-demo:", err)
		os.Exit(1)
	}
}

func run(numNodes, numViewers int, duration time.Duration) error {
	if numNodes < 2 {
		numNodes = 2
	}
	clock := sim.NewRealClock()

	// Streaming Brain with a full-mesh view (loopback: ~1 ms links).
	br := brain.New(brain.Config{N: numNodes})
	for i := 0; i < numNodes; i++ {
		for j := 0; j < numNodes; j++ {
			if i != j {
				br.ReportLink(i, j, time.Millisecond, 0, 0.1)
			}
		}
	}
	srv, err := udprun.NewBrainServer(br, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("Streaming Brain listening on %s\n", srv.Addr())

	// Overlay nodes.
	type overlayNode struct {
		n  *node.Node
		ep *udprun.Endpoint
	}
	overlay := make([]overlayNode, numNodes)
	for id := 0; id < numNodes; id++ {
		ep, err := udprun.Listen(id, "127.0.0.1:0")
		if err != nil {
			return err
		}
		cli, err := udprun.NewBrainClient(ep, srv.Addr())
		if err != nil {
			return err
		}
		id := id
		n := node.New(node.Config{
			ID:          id,
			Clock:       clock,
			Net:         ep,
			PathLookup:  cli.Lookup,
			OnNewStream: func(sid uint32) { cli.RegisterStream(sid, id) },
			IsOverlay:   func(peer int) bool { return peer < 1000 },
		})
		ep.Serve(cli.WrapHandler(n.OnMessage))
		overlay[id] = overlayNode{n: n, ep: ep}
		fmt.Printf("node %d listening on %s\n", id, ep.Addr())
	}
	defer func() {
		for _, o := range overlay {
			o.n.Close()
			o.ep.Close()
		}
	}()
	// Full-mesh peer registration.
	for i := range overlay {
		for j := range overlay {
			if i != j {
				if err := overlay[i].ep.AddPeer(j, overlay[j].ep.Addr()); err != nil {
					return err
				}
			}
		}
	}

	// Broadcaster uploads 360p to node 0.
	bep, err := udprun.Listen(1000, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer bep.Close()
	bep.AddPeer(0, overlay[0].ep.Addr())
	bep.Serve(func(int, []byte) {})
	bc := client.NewBroadcaster(1000, 0, 500, media.DefaultRenditions[2:], clock, bep, sim.NewSource(1).Stream("bc"))
	bc.Start()
	defer bc.Stop()
	fmt.Printf("broadcaster streaming %d renditions to node 0 (stream %d)\n", 1, bc.StreamID(0))
	time.Sleep(500 * time.Millisecond)

	// Viewers spread across consumer nodes.
	type viewing struct {
		v  *client.Viewer
		ep *udprun.Endpoint
	}
	views := make([]viewing, 0, numViewers)
	for k := 0; k < numViewers; k++ {
		consumer := (k % (numNodes - 1)) + 1
		id := 2000 + k
		vep, err := udprun.Listen(id, "127.0.0.1:0")
		if err != nil {
			return err
		}
		vep.AddPeer(consumer, overlay[consumer].ep.Addr())
		overlay[consumer].ep.AddPeer(id, vep.Addr())
		v := client.NewViewer(id, bc.StreamID(0), consumer, clock, vep)
		vep.Serve(v.OnMessage)
		v.Attach()
		hit := overlay[consumer].n.AttachViewer(id, bc.StreamID(0))
		fmt.Printf("viewer %d attached at node %d (local hit: %v)\n", id, consumer, hit)
		views = append(views, viewing{v: v, ep: vep})
	}
	defer func() {
		for _, vw := range views {
			vw.v.Close()
			vw.ep.Close()
		}
	}()

	fmt.Printf("streaming for %v over real UDP...\n\n", duration)
	time.Sleep(duration)

	fmt.Println("=== per-view QoE ===")
	for _, vw := range views {
		s := vw.v.Stats()
		fmt.Printf("viewer %d: started=%v startup=%v frames=%d missed=%d stalls=%d median streaming delay=%v\n",
			vw.v.ID, s.Started, s.StartupDelay.Round(time.Millisecond),
			s.FramesPlayed, s.FramesMissed, s.Stalls,
			s.MedianStreamingDelay().Round(time.Millisecond))
	}
	fmt.Println("\n=== per-node counters ===")
	for _, o := range overlay {
		m := o.n.Metrics()
		fmt.Printf("node %d: rx=%d fwd=%d nacksIn=%d rtx=%d localHits=%d cachePrimes=%d\n",
			o.n.ID(), m.PacketsReceived, m.PacketsForwarded, m.NACKsReceived,
			m.Retransmits, m.LocalHits, m.CacheHitPrimes)
	}
	bm := br.Metrics()
	fmt.Printf("\nBrain: lookups=%d pibHits=%d pibMisses=%d streams=%d\n",
		bm.Lookups, bm.PIBHits, bm.PIBMisses, bm.StreamsActive)
	return nil
}
