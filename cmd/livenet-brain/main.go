// livenet-brain runs a standalone Streaming Brain over UDP: it serves
// path lookups (Path Decision), stream registrations (Stream Management)
// and link reports (Global Discovery) for overlay nodes started with
// cmd/livenet-node, on this or other machines.
//
//	livenet-brain -listen 0.0.0.0:7000 -nodes 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"livenet/internal/brain"
	"livenet/internal/brainfed"
	"livenet/internal/sim"
	"livenet/internal/udprun"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "UDP listen address")
	n := flag.Int("nodes", 8, "number of overlay node IDs (0..n-1)")
	lastResort := flag.String("last-resort", "", "comma-separated reserved relay node IDs")
	epoch := flag.Duration("epoch", 10*time.Minute, "Global Routing recomputation period")
	regions := flag.Int("regions", 0, "federate the Brain into this many contiguous-ID shards (0 = monolith; reserved relays double as shard gateways)")
	flag.Parse()

	var lr []int
	if *lastResort != "" {
		for _, s := range strings.Split(*lastResort, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "livenet-brain: bad -last-resort:", err)
				os.Exit(1)
			}
			lr = append(lr, id)
		}
	}

	bcfg := brain.Config{
		N:          *n,
		LastResort: lr,
		RouteEpoch: *epoch,
		Clock:      sim.NewRealClock(),
	}
	var (
		api     udprun.BrainAPI
		metrics func() brain.Metrics
		shards  string
	)
	if *regions > 1 {
		// Federated Brain: contiguous ID blocks, reserved relays reused
		// as the cross-shard stitch gateways.
		fed := brainfed.New(brainfed.Config{
			Brain:     bcfg,
			Partition: brainfed.Contiguous(*n, *regions, lr),
		})
		defer fed.Close()
		api, metrics = fed, fed.Metrics
		shards = fmt.Sprintf(", %d shards", fed.Shards())
	} else {
		b := brain.New(bcfg)
		defer b.Close()
		api, metrics = b, b.Metrics
	}
	srv, err := udprun.NewBrainServer(api, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livenet-brain:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("Streaming Brain: %d nodes%s, listening on %s (epoch %v)\n", *n, shards, srv.Addr(), *epoch)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			m := metrics()
			fmt.Printf("lookups=%d pibHits=%d pibMisses=%d lastResort=%d alarms=%d streams=%d\n",
				m.Lookups, m.PIBHits, m.PIBMisses, m.LastResortUsed, m.OverloadAlarms, m.StreamsActive)
		}
	}
}
