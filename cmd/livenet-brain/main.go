// livenet-brain runs a standalone Streaming Brain over UDP: it serves
// path lookups (Path Decision), stream registrations (Stream Management)
// and link reports (Global Discovery) for overlay nodes started with
// cmd/livenet-node, on this or other machines.
//
//	livenet-brain -listen 0.0.0.0:7000 -nodes 8
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"livenet/internal/brain"
	"livenet/internal/brainfed"
	"livenet/internal/sim"
	"livenet/internal/udprun"
	"livenet/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "UDP listen address")
	n := flag.Int("nodes", 8, "number of overlay node IDs (0..n-1)")
	lastResort := flag.String("last-resort", "", "comma-separated reserved relay node IDs")
	epoch := flag.Duration("epoch", 10*time.Minute, "Global Routing recomputation period")
	regions := flag.Int("regions", 0, "federate the Brain into this many contiguous-ID shards (0 = monolith; reserved relays double as shard gateways)")
	drain := flag.Int("drain", -1, "admin mode: mark this node draining on a running Brain (-connect) and exit")
	undrain := flag.Int("undrain", -1, "admin mode: readmit this node on a running Brain (-connect) and exit")
	connect := flag.String("connect", "", "Brain address for -drain/-undrain admin mode (default: the -listen address)")
	flag.Parse()

	if *drain >= 0 || *undrain >= 0 {
		target, draining := *drain, true
		if *undrain >= 0 {
			target, draining = *undrain, false
		}
		addr := *connect
		if addr == "" {
			addr = *listen
		}
		if err := adminDrain(addr, target, draining); err != nil {
			fmt.Fprintln(os.Stderr, "livenet-brain:", err)
			os.Exit(1)
		}
		return
	}

	var lr []int
	if *lastResort != "" {
		for _, s := range strings.Split(*lastResort, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "livenet-brain: bad -last-resort:", err)
				os.Exit(1)
			}
			lr = append(lr, id)
		}
	}

	bcfg := brain.Config{
		N:          *n,
		LastResort: lr,
		RouteEpoch: *epoch,
		Clock:      sim.NewRealClock(),
	}
	var (
		api     udprun.BrainAPI
		metrics func() brain.Metrics
		shards  string
	)
	if *regions > 1 {
		// Federated Brain: contiguous ID blocks, reserved relays reused
		// as the cross-shard stitch gateways.
		fed := brainfed.New(brainfed.Config{
			Brain:     bcfg,
			Partition: brainfed.Contiguous(*n, *regions, lr),
		})
		defer fed.Close()
		api, metrics = fed, fed.Metrics
		shards = fmt.Sprintf(", %d shards", fed.Shards())
	} else {
		b := brain.New(bcfg)
		defer b.Close()
		api, metrics = b, b.Metrics
	}
	srv, err := udprun.NewBrainServer(api, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livenet-brain:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("Streaming Brain: %d nodes%s, listening on %s (epoch %v)\n", *n, shards, srv.Addr(), *epoch)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			m := metrics()
			fmt.Printf("lookups=%d pibHits=%d pibMisses=%d lastResort=%d alarms=%d streams=%d\n",
				m.Lookups, m.PIBHits, m.PIBMisses, m.LastResortUsed, m.OverloadAlarms, m.StreamsActive)
		}
	}
}

// adminDrain sends one DrainNode admin RPC to a running Brain at addr
// and waits for the DrainAck confirming the state change.
func adminDrain(addr string, node int, draining bool) error {
	ep, err := udprun.Listen(udprun.AdminID, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ep.Close()
	if err := ep.AddPeer(udprun.BrainID, addr); err != nil {
		return err
	}
	acked := make(chan wire.DrainAck, 1)
	ep.Serve(func(from int, data []byte) {
		var ack wire.DrainAck
		if ack.Unmarshal(data) == nil {
			select {
			case acked <- ack:
			default:
			}
		}
	})
	req := wire.DrainNode{Node: uint16(node), Drain: draining}
	// The RPC is a single datagram each way; retry a few times so one
	// lost packet does not fail the admin action.
	for attempt := 0; attempt < 5; attempt++ {
		if err := ep.Send(udprun.AdminID, udprun.BrainID, req.Marshal(nil)); err != nil {
			return err
		}
		select {
		case ack := <-acked:
			state := "draining"
			if !ack.Draining {
				state = "active"
			}
			fmt.Printf("node %d is now %s\n", ack.Node, state)
			return nil
		case <-time.After(500 * time.Millisecond):
		}
	}
	return fmt.Errorf("no DrainAck from %s after 5 attempts", addr)
}
