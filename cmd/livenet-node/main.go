// livenet-node runs one LiveNet overlay node over UDP. It serves all
// three flat-CDN roles at once: producer (broadcasters upload to it),
// relay (other nodes subscribe through it) and consumer (viewers attach
// to it). Paths come from a Streaming Brain started with
// cmd/livenet-brain.
//
//	livenet-node -id 0 -listen 0.0.0.0:7100 -brain 10.0.0.1:7000 \
//	    -peers "1=10.0.0.2:7100,2=10.0.0.3:7100"
//
// Clients (broadcasters/viewers) are auto-registered from their first
// datagram; peers only need static entries for node→node first contact.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"livenet/internal/node"
	"livenet/internal/sim"
	"livenet/internal/udprun"
	"livenet/internal/wire"
)

func main() {
	id := flag.Int("id", 0, "overlay node ID")
	listen := flag.String("listen", "127.0.0.1:0", "UDP listen address")
	brainAddr := flag.String("brain", "127.0.0.1:7000", "Streaming Brain address")
	peers := flag.String("peers", "", "comma-separated id=addr overlay peers")
	clientIDBase := flag.Int("client-id-base", 1000, "IDs >= this are clients, below are overlay nodes")
	report := flag.Duration("report", time.Minute, "Global Discovery report interval")
	shards := flag.Int("shards", 1, "receive shards (per-stream affinity by SSRC hash)")
	batch := flag.Int("batch", udprun.DefaultBatch, "datagrams per batched syscall round (recvmmsg/sendmmsg)")
	flag.Parse()

	ep, err := udprun.ListenOpts(*id, *listen, udprun.Options{Shards: *shards, Batch: *batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "livenet-node:", err)
		os.Exit(1)
	}
	defer ep.Close()

	cli, err := udprun.NewBrainClient(ep, *brainAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livenet-node:", err)
		os.Exit(1)
	}

	peerIDs := []int{}
	if *peers != "" {
		for _, kv := range strings.Split(*peers, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "livenet-node: bad peer %q\n", kv)
				os.Exit(1)
			}
			pid, err := strconv.Atoi(parts[0])
			if err != nil {
				fmt.Fprintln(os.Stderr, "livenet-node:", err)
				os.Exit(1)
			}
			if err := ep.AddPeer(pid, parts[1]); err != nil {
				fmt.Fprintln(os.Stderr, "livenet-node:", err)
				os.Exit(1)
			}
			peerIDs = append(peerIDs, pid)
		}
	}

	clock := sim.NewRealClock()
	nd := node.New(node.Config{
		ID:          *id,
		Clock:       clock,
		Net:         ep,
		PathLookup:  cli.Lookup,
		OnNewStream: func(sid uint32) { cli.RegisterStream(sid, *id) },
		IsOverlay:   func(peer int) bool { return peer < *clientIDBase },
	})
	defer nd.Close()
	prober := udprun.NewProber(ep)
	ep.Serve(prober.WrapHandler(cli.WrapHandler(nd.OnMessage)))
	fmt.Printf("node %d listening on %s (brain %s, %d static peers)\n",
		*id, ep.Addr(), *brainAddr, len(peerIDs))

	// Periodic Global Discovery reports: each peer link's RTT is measured
	// with the UDP ping utility (§4.2: a node that has not transmitted
	// recently actively probes the link).
	go func() {
		for range time.Tick(*report) {
			for _, pid := range peerIDs {
				pid := pid
				prober.Ping(pid, 2*time.Second, func(rtt time.Duration, ok bool) {
					if !ok {
						return // unreachable peer: report nothing this round
					}
					cli.Report(wire.NodeReport{
						From: uint16(*id), To: uint16(pid),
						RTTMicros:   uint32(rtt / time.Microsecond),
						LossPPM:     0,
						UtilPercent: 1000,
						NodeUtil:    uint16(100 * min(99, nd.StreamCount())),
					})
				})
			}
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("shutting down")
			return
		case <-tick.C:
			m := nd.Metrics()
			fmt.Printf("rx=%d fwd=%d nacksIn=%d rtx=%d localHits=%d lookups=%d streams=%d\n",
				m.PacketsReceived, m.PacketsForwarded, m.NACKsReceived,
				m.Retransmits, m.LocalHits, m.PathLookups, nd.StreamCount())
		}
	}
}
